/**
 * @file
 * The FlexTM runtime (Sections 3.5-3.6): the software side of the
 * decoupled hardware.
 *
 * BEGIN_TRANSACTION (beginTx) establishes handlers, sets the
 * transaction status word (TSW) to active, ALoads it, and clears the
 * per-core signatures and CSTs.  Inside the transaction, reads and
 * writes issue TLoad/TStore (subsumption).  END_TRANSACTION
 * (commitTx) runs the Commit() routine of Figure 3: copy-and-clear
 * the W-R and W-W CSTs, abort every named enemy by CASing its TSW
 * from active to aborted, then CAS-Commit the local TSW.  Everything
 * is local: no commit tokens, write-set broadcast, or global
 * arbitration, so transactions commit and abort in parallel.
 *
 * In Eager mode the thread additionally traps to the conflict
 * manager (Polka) whenever an access's response messages report a
 * Threatened or Exposed-Read conflict, resolving it immediately.  In
 * Lazy mode conflicts simply accumulate in the CSTs until commit.
 */

#ifndef FLEXTM_RUNTIME_FLEXTM_RUNTIME_HH
#define FLEXTM_RUNTIME_FLEXTM_RUNTIME_HH

#include <vector>

#include "core/overflow_table.hh"
#include "runtime/conflict_manager.hh"
#include "runtime/tx_thread.hh"

namespace flextm
{

/** Machine-wide FlexTM software state shared by all threads. */
struct FlexTmGlobals
{
    explicit FlexTmGlobals(Machine &m)
        : eagerConflicts(m.stats().counter("flextm.eager_conflicts")),
          siAborts(m.stats().counter("flextm.strong_isolation_aborts")),
          commitKills(m.stats().counter("flextm.commit_kills")),
          commitDefers(m.stats().counter("progress.commit_defers")),
          txConflicts(m.stats().histogram("flextm.tx_conflicts")),
          tswOf(m.cores(), 0), karma(m.cores(), 0)
    {
    }

    /** @name Interned conflict/commit counters (hot: bumped per
     *  conflicting access / per commit, not per experiment). */
    /// @{
    Counter &eagerConflicts, &siAborts, &commitKills, &commitDefers;
    Histogram &txConflicts;
    /// @}

    /** Per-core address of the running transaction's TSW (0: none).
     *  This is the process-level registry the commit routine uses to
     *  find the status words of conflicting peers. */
    std::vector<Addr> tswOf;

    /** Per-core Polka priority of the running transaction. */
    std::vector<std::uint64_t> karma;

    /** Commit/abort-time cleanup of our bits in remote CSTs, the
     *  "clean itself out of X's W-R" optimization (Section 3.6). */
    bool cstSelfClean = true;

    /**
     * Deliberate-bug switch for oracle self-tests: commit without
     * aborting W-R enemies (readers of our write set survive with
     * stale data).  Never enable outside the harness teeth tests.
     */
    bool chaosSkipWrAbort = false;

    /**
     * OS hook (Section 5): when a committing/managing transaction
     * must abort the transactions of processor @p k, the Conflict
     * Management Table may also name *suspended* transactions that
     * last ran on k; the OS aborts those by writing their
     * (virtualized) status words.
     */
    std::function<void(TxThread &self, CoreId k)> abortSuspended;
};

/** A FlexTM thread (one per core in the experiments). */
class FlexTmThread : public TxThread
{
  public:
    FlexTmThread(Machine &m, FlexTmGlobals &globals, ThreadId tid,
                 CoreId core, ConflictMode mode);
    ~FlexTmThread() override;

    std::string name() const override;

    ConflictMode mode() const { return mode_; }

    /** The thread's overflow table (inspectable by tests/benches). */
    const OverflowTable &overflowTable() const { return ot_; }

    /** Mutable OT access for the OS (paging retags entries while
     *  the owning thread is descheduled; Section 4.1). */
    OverflowTable &overflowTableForOs() { return ot_; }

    /** Address of this thread's transaction status word. */
    Addr tswAddr() const { return tswAddr_; }

    /** @name Context-switch support (driven by TxOs, Section 5)
     *  All three must be called from this thread's own context.
     *
     *  Ordering matters: the OS snapshots the signatures/CSTs and
     *  installs the summary signatures at the directory *before*
     *  detaching the hardware state - otherwise remote accesses
     *  during the (multi-cycle) spill would be checked against
     *  neither the per-core signatures nor the summaries, and a
     *  conflict could slip through undetected. */
    /// @{
    struct OsSavedState
    {
        Signature rsig{2048, 4};
        Signature wsig{2048, 4};
        CstSet cst;
    };
    /** Copy sigs + CSTs into the descriptor (instantaneous). */
    void osSnapshot(OsSavedState &out);
    /** Spill TMI lines to the OT and clear the hardware state (the
     *  abort instruction); takes simulated time.  Returns the CST
     *  registers consumed at the end of the spill so the OS can
     *  merge conflict records that arrived after osSnapshot into the
     *  saved descriptor. */
    CstSet osDetach();
    void osRestore(const OsSavedState &in);
    /** Deliver-or-abort: take a pending AOU alert now (throwing
     *  TxAbort if it demands one) instead of parking it.  Used by
     *  the OS around suspend, where the alert flag would otherwise
     *  be lost - strong-isolation aborts never write the TSW that
     *  osRestore consults. */
    void osDeliverAlert();
    /// @}

  protected:
    void beginTx() override;
    bool commitTx() override;
    void abortCleanup() override;
    std::uint64_t txRead(Addr a, unsigned size) override;
    void txWrite(Addr a, std::uint64_t v, unsigned size) override;
    void injectSpuriousAlert() override;
    void injectRemoteAbort() override;

  private:
    FlexTmGlobals &g_;
    ConflictMode mode_;
    Addr tswAddr_;
    OverflowTable ot_;
    /** Union of cores this transaction conflicted with (for the
     *  Figure 4 conflicting-transactions statistic). */
    std::uint64_t txConflictMask_ = 0;
    /** Set by the strong-isolation hook: a non-transactional remote
     *  access required this transaction to abort. */
    bool strongAborted_ = false;

    HwContext &ctx() { return m_.context(core_); }

    /** Point the core's trap vectors at this thread. */
    void installHooks();

    /** Take any pending alert: abort if our TSW went to aborted, or
     *  re-ALoad it after a capacity alert. */
    void checkAlert();

    /** Eager mode: resolve the conflicts an access just reported. */
    void handleEagerConflicts(std::uint64_t enemies);

    /** Clear our bits out of remote CSTs (spurious-abort hygiene);
     *  @p cst is the register state captured at transaction end. */
    void selfCleanRemoteCsts(const CstSet &cst);

    void resetHwTxState();
};

} // namespace flextm

#endif // FLEXTM_RUNTIME_FLEXTM_RUNTIME_HH
