/**
 * @file
 * RSTM-style object-based non-blocking software TM (Marathe et
 * al. [24]) - the legacy-hardware STM baseline of Workload-Set 1.
 *
 * Configuration matches the paper's: invisible readers with
 * self-validation for conflict detection.  Objects are mapped to
 * cache lines (the paper's workloads use small nodes of 1-4 lines);
 * each object has a versioned header word.  The characteristic RSTM
 * cost structure is reproduced with real simulated memory traffic:
 *
 *  - metadata indirection: a header access on every first touch;
 *  - cloning: writers copy the object on acquire and copy back at
 *    commit ("copying" in the paper's breakdown);
 *  - self-validation: every new open re-validates all previously
 *    opened objects (O(n^2) header loads per transaction - the 80%
 *    validation share the paper reports for RandomGraph);
 *  - non-blocking enemy aborts: an attacker CASes the victim's
 *    per-transaction status word.
 */

#ifndef FLEXTM_RUNTIME_RSTM_RUNTIME_HH
#define FLEXTM_RUNTIME_RSTM_RUNTIME_HH

#include <vector>

#include "runtime/tx_thread.hh"
#include "sim/flat_map.hh"

namespace flextm
{

/** Machine-wide RSTM metadata. */
struct RstmGlobals
{
    explicit RstmGlobals(Machine &m);

    Machine &m;
    Addr headerBase;      //!< per-object (line) header words
    unsigned headerCount;
    std::vector<Addr> tswOf;             //!< per core
    std::vector<std::uint64_t> karma;    //!< per core

    Addr headerFor(Addr a) const;
};

/** One RSTM thread. */
class RstmThread : public TxThread
{
  public:
    RstmThread(Machine &m, RstmGlobals &g, ThreadId tid, CoreId core);
    ~RstmThread() override;

    std::string name() const override { return "RSTM"; }

    bool objectBased() const override { return true; }

  protected:
    void beginTx() override;
    bool commitTx() override;
    void abortCleanup() override;
    std::uint64_t txRead(Addr a, unsigned size) override;
    void txWrite(Addr a, std::uint64_t v, unsigned size) override;

  private:
    struct WriteEntry
    {
        Addr clone;
        Addr header;
        std::uint64_t oldHeader;
    };

    RstmGlobals &g_;
    Addr tswAddr_;

    /** (header addr -> version observed) for opened-for-read lines */
    FlatMap<Addr, std::uint64_t> readSet_;
    /** line base -> write entry */
    FlatMap<Addr, WriteEntry> writeSet_;

    /** Clone buffers come from a thread-private arena reserved at
     *  construction and are never returned to the shared allocator:
     *  clone traffic is invisible to transactional bookkeeping, so it
     *  must not touch addresses workload data can occupy. */
    static constexpr unsigned cloneArenaLines = 256;
    std::vector<Addr> clonePool_;

    Addr acquireClone();

    void checkStatus();
    /** Wait out / abort the owner of a locked header (Polka). */
    void resolveOwner(Addr header);
    /** Re-validate every opened-for-read header (self-validation). */
    void validateReadSet();
    void releaseWrites(bool committed);

    std::uint64_t headerWordLocked() const;
};

} // namespace flextm

#endif // FLEXTM_RUNTIME_RSTM_RUNTIME_HH
