/**
 * @file
 * RTM-F-style hardware-accelerated software TM (Shriraman et
 * al. [34,35]) - the "hardware-accelerated STM" comparand of
 * Workload-Set 1.
 *
 * RTM-F uses two of FlexTM's mechanisms - Alert-On-Update and
 * Programmable Data Isolation - but *not* signatures or CSTs:
 * conflict detection runs through software-managed per-object
 * metadata.  PDI eliminates copying (speculative writes buffer in
 * TMI lines); AOU on object headers eliminates read-set validation
 * (a writer's header acquisition alerts every reader).  What remains
 * is the per-access metadata bookkeeping the paper measures at
 * 40-50% of execution time - header loads, ALoads, acquisition
 * CASes, and release stores - which this implementation issues as
 * real simulated memory traffic.
 */

#ifndef FLEXTM_RUNTIME_RTMF_RUNTIME_HH
#define FLEXTM_RUNTIME_RTMF_RUNTIME_HH

#include <vector>

#include "core/overflow_table.hh"
#include "runtime/tx_thread.hh"
#include "sim/flat_map.hh"

namespace flextm
{

/** Machine-wide RTM-F metadata. */
struct RtmfGlobals
{
    explicit RtmfGlobals(Machine &m);

    Machine &m;
    Addr headerBase;
    unsigned headerCount;
    std::vector<Addr> tswOf;
    std::vector<std::uint64_t> karma;

    Addr headerFor(Addr a) const;
};

/** One RTM-F thread. */
class RtmfThread : public TxThread
{
  public:
    RtmfThread(Machine &m, RtmfGlobals &g, ThreadId tid, CoreId core);
    ~RtmfThread() override;

    std::string name() const override { return "RTM-F"; }

    bool objectBased() const override { return true; }

  protected:
    void beginTx() override;
    bool commitTx() override;
    void abortCleanup() override;
    std::uint64_t txRead(Addr a, unsigned size) override;
    void txWrite(Addr a, std::uint64_t v, unsigned size) override;
    void injectSpuriousAlert() override;
    void injectRemoteAbort() override;

  private:
    RtmfGlobals &g_;
    Addr tswAddr_;
    OverflowTable ot_;
    bool strongAborted_ = false;

    /** Headers we ALoaded for read monitoring -> word observed. */
    FlatMap<Addr, std::uint64_t> readHeaders_;
    /** Acquired headers -> pre-acquisition word. */
    FlatMap<Addr, std::uint64_t> acquired_;
    /** Lines already opened (avoid re-running open protocol). */
    FlatSet<Addr> openedLines_;

    HwContext &ctx() { return m_.context(core_); }

    void checkAlert();
    void resolveOwner(Addr header);
    /** After a header alert: confirm every watched header still has
     *  the word we observed (a committed writer bumps it). */
    void revalidateReadHeaders();
    void openForRead(Addr a);
    void openForWrite(Addr a);
    void releaseAll(bool committed);
};

} // namespace flextm

#endif // FLEXTM_RUNTIME_RTMF_RUNTIME_HH
