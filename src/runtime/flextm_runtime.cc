#include "runtime/flextm_runtime.hh"

#include <bit>

#include "runtime/conflict_manager.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace flextm
{

FlexTmThread::FlexTmThread(Machine &m, FlexTmGlobals &globals,
                           ThreadId tid, CoreId core, ConflictMode mode)
    : TxThread(m, tid, core), g_(globals), mode_(mode),
      ot_(m.config().signatureBits, m.config().signatureHashes)
{
    // The TSW occupies its own cache line so AOU on it never aliases
    // with data.
    tswAddr_ = m_.memory().allocate(lineBytes, lineBytes);
}

void
FlexTmThread::installHooks()
{
    // (Re-)claim the core's trap vectors.  Installed at transaction
    // begin and at OS resume rather than construction, so several
    // threads can time-share one core across context switches.
    HwContext &c = ctx();
    c.strongAbort = [this](CoreId aggressor) {
        (void)aggressor;
        strongAborted_ = true;
        ctx().aou.raise(AlertCause::RemoteUpdate, tswAddr_);
    };
    c.otAllocTrap = [this] { ctx().ot = &ot_; };
}

FlexTmThread::~FlexTmThread()
{
    HwContext &c = ctx();
    if (c.ot == &ot_)
        c.ot = nullptr;
    c.strongAbort = nullptr;
    c.otAllocTrap = nullptr;
}

std::string
FlexTmThread::name() const
{
    return mode_ == ConflictMode::Eager ? "FlexTM-Eager" : "FlexTM-Lazy";
}

void
FlexTmThread::beginTx()
{
    HwContext &c = ctx();
    sim_assert(!c.inTx, "beginTx with transaction already active");
    installHooks();

    // Set up per-transaction metadata (Section 3.5): status word
    // active, ALoaded for abort notification; clean signatures and
    // CSTs; conflict-detection mode.
    plainWrite(tswAddr_, TswActive, 4);
    charge(m_.memsys().aload(core_, tswAddr_, m_.scheduler().now()));

    c.rsig.clear();
    c.wsig.clear();
    c.cst.clearAll();
    c.aou.acknowledge();
    strongAborted_ = false;
    ot_.clear();
    c.ot = nullptr;  // installed by the overflow trap on first spill
    c.mode = mode_;
    c.inTx = true;

    g_.tswOf[core_] = tswAddr_;
    // Starvation escalation: consecutive aborts carry over as bonus
    // karma, so a repeatedly-victimized transaction wins Polka
    // arbitration on its retries.
    g_.karma[core_] = m_.progress().bonusKarma(tid_);
    txConflictMask_ = 0;

    // Duality (auditor invariant I5) only holds while commit/abort
    // retire our bits from remote CSTs, i.e. with self-clean on.
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteTxBegin(core_, tid_, tswAddr_, TswActive,
                       g_.cstSelfClean);

    // Register checkpointing: spill of local registers to the stack
    // (the paper's main remaining software overhead; Section 7.3).
    work(25);
    FTRACE(Tm, m_.scheduler().now(), "core%u begin tx (%s)", core_,
           mode_ == ConflictMode::Eager ? "eager" : "lazy");
}

void
FlexTmThread::checkAlert()
{
    HwContext &c = ctx();
    if (!c.aou.alertPending())
        return;
    const AlertCause cause = c.aou.lastCause();
    c.aou.acknowledge();
    // Until the watch is re-established below, the marked TSW line
    // may legitimately be uncached with no pending alert; suppress
    // the auditor's AOU-liveness check for the handler window.  (On
    // the throwing paths the flag is cleared by noteTxEnd.)
    StateAuditor *auditor = m_.memsys().auditor();
    if (auditor)
        auditor->noteSettling(core_, true);

    if (strongAborted_) {
        ++g_.siAborts;
        throw TxAbort{AbortCause::EnemyKill};
    }
    // The handler inspects the TSW; if an enemy aborted us, unroll.
    const auto tsw =
        static_cast<std::uint32_t>(plainRead(tswAddr_, 4));
    if (tsw == TswAborted)
        throw TxAbort{AbortCause::EnemyKill};
    if (cause == AlertCause::Capacity) {
        // The marked line was evicted; re-establish the watch.
        charge(m_.memsys().aload(core_, tswAddr_, m_.scheduler().now()));
    }
    if (auditor)
        auditor->noteSettling(core_, false);
}

void
FlexTmThread::handleEagerConflicts(std::uint64_t enemies)
{
    ConflictSummaryTable::forEach(enemies, [&](CoreId k) {
        ++g_.eagerConflicts;
        PolkaHooks hooks;
        hooks.enemyActive = [this, k] {
            const Addr enemy_tsw = g_.tswOf[k];
            if (enemy_tsw == 0)
                return false;
            return static_cast<std::uint32_t>(
                       plainRead(enemy_tsw, 4)) == TswActive;
        };
        hooks.abortEnemy = [this, k] {
            const Addr enemy_tsw = g_.tswOf[k];
            if (enemy_tsw != 0)
                casWord(enemy_tsw, TswActive, TswAborted, 4);
            if (g_.abortSuspended)
                g_.abortSuspended(*this, k);
        };
        hooks.enemyKarma = [this, k] {
            work(2);  // reading the enemy descriptor
            return g_.karma[k];
        };
        hooks.alertCheck = [this] { checkAlert(); };
        hooks.enemyIrrevocable = [this, k] {
            return m_.progress().isIrrevocableCore(k);
        };
        hooks.enemyCore = [k] { return k; };
        m_.cmPolicy().resolve(*this, g_.karma[core_], hooks);

        // Do NOT retire k's bits from our CSTs here.  resolve()'s
        // last enemy-status read yields before returning, so core k
        // can begin a fresh transaction and conflict with us again in
        // that window - a clear would erase the commit-time kill
        // obligation those new bits represent, letting both sides
        // commit around an unserializable read.  Bits belonging to
        // the dead transaction are retired by its own
        // selfCleanRemoteCsts pass; any that linger merely make our
        // commit's kill CAS hit an already-settled status word.
    });
}

std::uint64_t
FlexTmThread::txRead(Addr a, unsigned size)
{
    std::uint64_t v = 0;
    MemResult r = m_.memsys().access(core_, AccessType::TLoad, a, size,
                                     &v, m_.scheduler().now());
    charge(r.latency);
    ++g_.karma[core_];
    txConflictMask_ |= r.threatenedBy | r.exposedReadBy;
    checkAlert();
    if (mode_ == ConflictMode::Eager && r.hasConflict())
        handleEagerConflicts(r.threatenedBy | r.exposedReadBy);
    return v;
}

void
FlexTmThread::txWrite(Addr a, std::uint64_t v, unsigned size)
{
    MemResult r = m_.memsys().access(core_, AccessType::TStore, a, size,
                                     &v, m_.scheduler().now());
    charge(r.latency);
    ++g_.karma[core_];
    txConflictMask_ |= r.threatenedBy | r.exposedReadBy;
    checkAlert();
    if (mode_ == ConflictMode::Eager && r.hasConflict())
        handleEagerConflicts(r.threatenedBy | r.exposedReadBy);
}

bool
FlexTmThread::commitTx()
{
    HwContext &c = ctx();
    checkAlert();

    // From the first copy-and-clear until CAS-Commit resolves, our
    // registers are empty while un-killed victims still hold their
    // reciprocal bits: a legal asymmetry the auditor must not flag.
    // Every exit path funnels through noteTxEnd, which resets the
    // settling depth.
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteSettling(core_, true);

    // The Commit() routine of Figure 3: non-blocking, entirely local.
    for (;;) {
        // Serial-irrevocable fallback: a peer running under the
        // irrevocability token may not be killed.  Defer - abort
        // ourselves and retry once the holder drains (we then stall
        // at the next begin until it commits).  Peek the registers
        // non-destructively: the throw must happen before the
        // copy-and-clear below consumes them, or abortCleanup's CST
        // hygiene pass would miss the reciprocal bits and peers would
        // keep conflict records against a dead transaction.
        bool defer = false;
        ConflictSummaryTable::forEach(c.cst.wr.raw() | c.cst.ww.raw(),
                                      [&](CoreId k) {
            if (k != core_ && m_.progress().isIrrevocableCore(k))
                defer = true;
        });
        if (defer) {
            ++g_.commitDefers;
            throw TxAbort{AbortCause::IrrevocableDefer};
        }

        // Policy gate, same pre-copy-and-clear position as the defer
        // check: requester-abort and timestamp policies yield the
        // commit window to still-active enemies instead of killing
        // them.  Built from host-side peeks only (zero simulated
        // cycles), and a no-op under the default committer-wins
        // policies, so the Polka path is untouched.
        {
            LazyCommitView view;
            ConflictSummaryTable::forEach(
                c.cst.wr.raw() | c.cst.ww.raw(), [&](CoreId k) {
                    const Addr enemy_tsw = g_.tswOf[k];
                    if (k == core_ || enemy_tsw == 0)
                        return;
                    std::uint32_t tsw = 0;
                    m_.memsys().peek(enemy_tsw, &tsw, 4);
                    if (tsw == TswActive)
                        view.activeEnemies |= std::uint64_t{1} << k;
                });
            view.enemyStamp = [this](CoreId k) {
                return m_.progress().arbitrationStamp(k);
            };
            m_.cmPolicy().lazyCommitGate(*this, view);
        }

        // 1. copy-and-clear W-R and W-W registers
        const std::uint64_t wr_enemies = c.cst.wr.copyAndClear();
        const std::uint64_t enemies =
            (g_.chaosSkipWrAbort ? 0 : wr_enemies) |
            c.cst.ww.copyAndClear();
        txConflictMask_ |= enemies;
        charge(1);

        // 2-3. abort every conflicting peer by CASing its TSW.  The
        // conflicting processor may also host suspended transactions
        // (Conflict Management Table, Section 5) - the OS hook
        // aborts those through their virtualized status words.
        ConflictSummaryTable::forEach(enemies, [&](CoreId k) {
            const Addr enemy_tsw = g_.tswOf[k];
            if (enemy_tsw != 0 && k != core_) {
                // The defer sweep above ran before this loop's yield
                // windows, and the token is only ever acquired at
                // transaction begin: an enemy that is irrevocable
                // *now* began a fresh transaction after the conflict
                // this bit records, so the bit is stale and the
                // token holder may not be killed.  If the fresh
                // transaction genuinely conflicts, its new CST bits
                // fail the CAS-Commit below and the retry defers.
                if (m_.progress().isIrrevocableCore(k))
                    return;
                // I9: the kill is justified by the CST bit that put
                // k into the enemies mask.
                if (StateAuditor *a = m_.memsys().auditor())
                    a->noteEnemyAbort(m_.scheduler().now(), core_, k);
                CasOutcome o =
                    casWord(enemy_tsw, TswActive, TswAborted, 4);
                if (o.success)
                    ++g_.commitKills;
            }
            if (g_.abortSuspended)
                g_.abortSuspended(*this, k);
        });

        // The kill loop above yields once per enemy CAS; a plain
        // (non-transactional) writer may have hit our signatures in
        // one of those windows and demanded our abort via an AOU
        // alert - without ever touching our TSW.  Drain such alerts
        // here, or the CAS-Commit below would publish a transaction
        // that strong isolation already ordered after the plain
        // write's pre-transactional view.
        while (c.aou.alertPending())
            checkAlert();

        // 4. CAS-Commit our own status word
        CommitResult cr = m_.memsys().casCommit(
            core_, tswAddr_, TswActive, TswCommitted,
            m_.scheduler().now());
        // The successful CAS-Commit is the serialization point; the
        // stamp must be taken before the latency charge yields.
        if (cr.outcome == CommitOutcome::Committed)
            oracleStamp();
        charge(cr.latency);

        switch (cr.outcome) {
          case CommitOutcome::Committed: {
            g_.txConflicts.add(std::popcount(txConflictMask_));
            // Drop transactional hardware state *before* the remote
            // CST hygiene pass (which takes time): once the TSW says
            // committed, our signatures must stop producing conflict
            // hints or peers would record conflicts against a dead
            // transaction.
            const CstSet saved_cst = ctx().cst;
            resetHwTxState();
            selfCleanRemoteCsts(saved_cst);
            return true;
          }
          case CommitOutcome::FailedCsts:
            // 5. new conflicts arrived between the clear and the
            // CAS-Commit: restart the routine.
            continue;
          case CommitOutcome::FailedAborted:
            // An enemy beat us to our own TSW; the controller has
            // already flash-aborted our speculative state.
            throw TxAbort{AbortCause::EnemyKill};
        }
    }
}

void
FlexTmThread::injectSpuriousAlert()
{
    // A capacity alert with the TSW still active: the handler must
    // survive it by re-establishing the watch.
    ctx().aou.raise(AlertCause::Capacity, tswAddr_);
    checkAlert();
}

void
FlexTmThread::injectRemoteAbort()
{
    // Model an enemy's commit-time kill: CAS our TSW to aborted and
    // deliver the AOU alert, driving the full abort path.
    ++ctr_.faultForcedAborts;
    casWord(tswAddr_, TswActive, TswAborted, 4);
    ctx().aou.raise(AlertCause::RemoteUpdate, tswAddr_);
    checkAlert();  // observes the aborted TSW and throws
}

void
FlexTmThread::selfCleanRemoteCsts(const CstSet &cst)
{
    if (!g_.cstSelfClean)
        return;
    // CST registers are software-visible (Section 3.2); retiring our
    // bits from peers avoids spuriously aborting their next
    // transactions.
    Cycles cost = 0;
    ConflictSummaryTable::forEach(cst.rw.raw(), [&](CoreId j) {
        m_.context(j).cst.wr.clearBit(core_);
        cost += 2;
    });
    ConflictSummaryTable::forEach(cst.wr.raw(), [&](CoreId j) {
        m_.context(j).cst.rw.clearBit(core_);
        cost += 2;
    });
    ConflictSummaryTable::forEach(cst.ww.raw(), [&](CoreId j) {
        m_.context(j).cst.ww.clearBit(core_);
        cost += 2;
    });
    if (cost)
        work(cost);
}

void
FlexTmThread::resetHwTxState()
{
    HwContext &c = ctx();
    c.rsig.clear();
    c.wsig.clear();
    c.cst.clearAll();
    m_.memsys().arelease(core_, tswAddr_);
    c.aou.acknowledge();
    c.ot = nullptr;
    c.inTx = false;
    g_.tswOf[core_] = 0;
    g_.karma[core_] = 0;
    strongAborted_ = false;
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteTxEnd(core_);
}

void
FlexTmThread::osSnapshot(OsSavedState &out)
{
    HwContext &c = ctx();
    sim_assert(c.inTx, "osSnapshot outside a transaction");
    out.rsig = c.rsig;
    out.wsig = c.wsig;
    out.cst = c.cst;
}

CstSet
FlexTmThread::osDetach()
{
    HwContext &c = ctx();
    sim_assert(c.inTx, "osDetach outside a transaction");

    // Spill TMI lines to the overflow table and drop TI lines, so
    // any later conflicting access misses and reaches the directory
    // where the summary signatures (already installed by the
    // caller) are checked (Section 5).  The per-core signatures are
    // still live during the spill, so conflicts in flight are
    // caught by whichever mechanism sees them first.
    c.ot = &ot_;
    charge(m_.memsys().flushTransactionalState(core_,
                                               m_.scheduler().now()));

    // The abort instruction then clears the hardware state; the OT
    // keeps the speculative values (it lives in virtual memory).
    // The CST registers are consumed with copy-and-clear and handed
    // back to the OS: responders kept setting bits in them while the
    // multi-cycle flush above ran, and a plain clear here would
    // erase those conflict records before the OS merges the live
    // registers into the saved descriptor.
    c.rsig.clear();
    c.wsig.clear();
    CstSet live;
    live.rw.setRaw(c.cst.rw.copyAndClear());
    live.wr.setRaw(c.cst.wr.copyAndClear());
    live.ww.setRaw(c.cst.ww.copyAndClear());
    m_.memsys().arelease(core_, tswAddr_);
    // Deliberately NOT acknowledging a pending alert: an alert that
    // raced the suspend (strong isolation never touches our TSW)
    // must survive to the caller's deliver-or-abort pass, or the
    // transaction would resume unserializably.
    c.ot = nullptr;
    c.inTx = false;
    g_.tswOf[core_] = 0;
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteTxEnd(core_);
    work(60);  // OS save path
    ++m_.stats().counter("os.suspends");
    return live;
}

void
FlexTmThread::osDeliverAlert()
{
    HwContext &c = ctx();
    if (!c.aou.alertPending())
        return;
    const AlertCause cause = c.aou.lastCause();
    c.aou.acknowledge();
    StateAuditor *auditor = m_.memsys().auditor();
    if (auditor)
        auditor->noteSettling(core_, true);
    if (strongAborted_) {
        ++g_.siAborts;
        throw TxAbort{AbortCause::EnemyKill};
    }
    const auto tsw =
        static_cast<std::uint32_t>(plainRead(tswAddr_, 4));
    if (tsw == TswAborted)
        throw TxAbort{AbortCause::EnemyKill};
    // A capacity alert is dropped: the watch is torn down across the
    // switch anyway and osRestore re-ALoads an active TSW.  Settling
    // deliberately stays on: the TSW stays marked-but-unwatched until
    // the detach (whose noteTxEnd clears the flag) completes.
    (void)cause;
}

void
FlexTmThread::osRestore(const OsSavedState &in)
{
    HwContext &c = ctx();
    sim_assert(!c.inTx, "osRestore with a transaction active");
    installHooks();
    c.rsig = in.rsig;
    c.wsig = in.wsig;
    c.cst = in.cst;
    if (!ot_.empty())
        c.ot = &ot_;
    c.inTx = true;
    g_.tswOf[core_] = tswAddr_;
    work(60);  // OS restore path

    // Virtualized AOU: wake up in a handler that checks the TSW and
    // re-ALoads it if still active (Section 5).
    const auto tsw =
        static_cast<std::uint32_t>(plainRead(tswAddr_, 4));
    if (tsw != TswActive)
        throw TxAbort{AbortCause::EnemyKill};
    charge(m_.memsys().aload(core_, tswAddr_, m_.scheduler().now()));
    if (StateAuditor *a = m_.memsys().auditor()) {
        // Re-register with CST tracking off: peers that committed
        // while we were parked cleaned their bits from the *saved*
        // registers' hardware home, not the descriptor we just
        // restored, so one-sided stale bits are legal here.  Seed
        // the conflict history from the restored registers.
        a->noteTxBegin(core_, tid_, tswAddr_, TswActive, false);
        a->noteCstSet(core_, CstKind::Rw, c.cst.rw.raw(),
                      /*symmetric=*/false);
        a->noteCstSet(core_, CstKind::Wr, c.cst.wr.raw(),
                      /*symmetric=*/false);
        a->noteCstSet(core_, CstKind::Ww, c.cst.ww.raw(),
                      /*symmetric=*/false);
    }
    ++m_.stats().counter("os.resumes");
}

void
FlexTmThread::abortCleanup()
{
    // Flash-abort speculative state (idempotent if CAS-Commit already
    // did it) and discard the overflow table, then retire our bits
    // from remote CSTs (after our own conflict hints have stopped).
    FTRACE(Tm, m_.scheduler().now(), "core%u abort tx", core_);
    charge(m_.memsys().abortTx(core_, m_.scheduler().now()));
    const CstSet saved_cst = ctx().cst;
    resetHwTxState();
    selfCleanRemoteCsts(saved_cst);
}

} // namespace flextm
