#include "runtime/rtmf_runtime.hh"

#include "runtime/conflict_manager.hh"
#include "sim/logging.hh"

namespace flextm
{

namespace
{

bool
isLocked(std::uint64_t word)
{
    return (word & 1) != 0;
}

CoreId
lockOwner(std::uint64_t word)
{
    return static_cast<CoreId>(word >> 1);
}

} // anonymous namespace

RtmfGlobals::RtmfGlobals(Machine &machine)
    : m(machine), tswOf(machine.cores(), 0), karma(machine.cores(), 0)
{
    headerCount = 1u << 16;
    headerBase =
        m.memory().allocate(std::size_t{headerCount} * 8, lineBytes);
}

Addr
RtmfGlobals::headerFor(Addr a) const
{
    const std::uint64_t line = lineNumber(a) * 2654435761ULL;
    return headerBase + (line & (headerCount - 1)) * 8;
}

RtmfThread::RtmfThread(Machine &m, RtmfGlobals &g, ThreadId tid,
                       CoreId core)
    : TxThread(m, tid, core), g_(g),
      ot_(m.config().signatureBits, m.config().signatureHashes)
{
    tswAddr_ = m_.memory().allocate(lineBytes, lineBytes);
}

RtmfThread::~RtmfThread()
{
    HwContext &c = ctx();
    if (c.ot == &ot_)
        c.ot = nullptr;
    c.otAllocTrap = nullptr;
    c.strongAbort = nullptr;
}

void
RtmfThread::beginTx()
{
    HwContext &c = ctx();
    // (Re-)claim the core's trap vectors (threads may time-share).
    c.otAllocTrap = [this] { ctx().ot = &ot_; };
    // A plain remote write aborting us arrives via the wsig/rsig
    // check (strong isolation).
    c.strongAbort = [this](CoreId) {
        ctx().aou.raise(AlertCause::RemoteUpdate, tswAddr_);
        strongAborted_ = true;
    };
    readHeaders_.clear();
    acquired_.clear();
    openedLines_.clear();
    strongAborted_ = false;

    plainWrite(tswAddr_, TswActive, 4);
    charge(m_.memsys().aload(core_, tswAddr_, m_.scheduler().now()));

    c.rsig.clear();
    c.wsig.clear();
    c.cst.clearAll();
    c.aou.acknowledge();
    ot_.clear();
    c.ot = nullptr;
    c.inTx = true;

    g_.tswOf[core_] = tswAddr_;
    // Starvation escalation: carry consecutive-abort karma forward.
    g_.karma[core_] = m_.progress().bonusKarma(tid_);
    // RTM-F has no CSTs, so duality checks do not apply.
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteTxBegin(core_, tid_, tswAddr_, TswActive,
                       /*tracks_csts=*/false);
    work(25);  // register checkpoint
}

void
RtmfThread::checkAlert()
{
    HwContext &c = ctx();
    if (!c.aou.alertPending())
        return;
    const Addr alert_addr = c.aou.lastAddr();
    const AlertCause cause = c.aou.lastCause();
    c.aou.acknowledge();
    // Between this acknowledge and the re-ALoads below, watched
    // header lines are legitimately uncached with no pending alert;
    // suppress the auditor's AOU-liveness check for the window.  (On
    // the throwing paths the flag is cleared by noteTxEnd.)
    StateAuditor *auditor = m_.memsys().auditor();
    if (auditor)
        auditor->noteSettling(core_, true);

    if (strongAborted_)
        throw TxAbort{AbortCause::EnemyKill};

    const auto tsw =
        static_cast<std::uint32_t>(plainRead(tswAddr_, 4));
    if (tsw == TswAborted)
        throw TxAbort{AbortCause::EnemyKill};

    if (lineAlign(alert_addr) == lineAlign(tswAddr_) &&
        cause == AlertCause::Capacity) {
        // The TSW's alert bit was lost to an eviction; re-establish
        // it.  Do NOT return early: alerts coalesce in hardware (one
        // pending bit, last address wins), so a header alert may be
        // hiding behind this one - fall through to the conservative
        // re-validation below or a doomed read would commit.
        charge(m_.memsys().aload(core_, tswAddr_,
                                 m_.scheduler().now()));
    }

    // A monitored object header may have changed: a writer acquired
    // an object we read.  Alerts coalesce, so conservatively
    // re-validate every watched header: wait out or
    // abort live owners, then compare against the observed word - a
    // committed writer leaves a bumped version behind and we must
    // self-abort; an aborted one restores the old word and we live.
    ++m_.stats().counter("rtmf.read_conflicts");
    revalidateReadHeaders();
    if (auditor)
        auditor->noteSettling(core_, false);
}

void
RtmfThread::revalidateReadHeaders()
{
    // Ascending header order, as the former std::map iterated.
    readHeaders_.forEachSorted([this](Addr header,
                                      const std::uint64_t &word) {
        std::uint64_t cur = plainRead(header, 8);
        while (isLocked(cur) && lockOwner(cur) != core_) {
            resolveOwner(header);
            cur = plainRead(header, 8);
        }
        if (isLocked(cur) && lockOwner(cur) == core_) {
            auto it = acquired_.find(header);
            if (it == acquired_.end() || it->second != word)
                throw TxAbort{AbortCause::Validation};
        } else if (cur != word) {
            throw TxAbort{AbortCause::Validation};
        }
        // Re-establish the AOU watch lost to the invalidation.
        charge(m_.memsys().aload(core_, header, m_.scheduler().now()));
    });
}

void
RtmfThread::resolveOwner(Addr header)
{
    PolkaHooks hooks;
    hooks.enemyActive = [this, header] {
        return isLocked(plainRead(header, 8));
    };
    hooks.abortEnemy = [this, header] {
        const std::uint64_t w = plainRead(header, 8);
        if (!isLocked(w))
            return;
        const Addr enemy_tsw = g_.tswOf[lockOwner(w)];
        if (enemy_tsw != 0)
            casWord(enemy_tsw, TswActive, TswAborted, 4);
    };
    hooks.enemyKarma = [this, header] {
        const std::uint64_t w = plainRead(header, 8);
        return isLocked(w) ? g_.karma[lockOwner(w)] : 0;
    };
    hooks.alertCheck = [this] { checkAlert(); };
    hooks.enemyIrrevocable = [this, header] {
        const std::uint64_t w = plainRead(header, 8);
        return isLocked(w) &&
               m_.progress().isIrrevocableCore(lockOwner(w));
    };
    hooks.enemyCore = [this, header] {
        // Host-side peek: identification for the auditor/arbitration
        // must not perturb the timed memory traffic.
        std::uint64_t w = 0;
        m_.memsys().peek(header, &w, 8);
        return isLocked(w) ? lockOwner(w) : invalidCore;
    };
    m_.cmPolicy().resolve(*this, g_.karma[core_], hooks);
}

void
RtmfThread::openForRead(Addr a)
{
    const Addr header = g_.headerFor(a);
    if (readHeaders_.count(header) || acquired_.count(header))
        return;
    // AOU watch on the header: a remote acquisition alerts us - this
    // replaces per-access validation entirely.  The watch must go
    // live BEFORE the header word is sampled: reading first leaves a
    // window (the read's charge yields) where a writer can acquire
    // unobserved - the recorded word would be the stale pre-lock
    // value and the only remaining alert, the writer's release, can
    // land after this reader has already drained alerts and
    // CAS-committed a doomed read.
    std::uint64_t h;
    try {
        for (;;) {
            charge(m_.memsys().aload(core_, header,
                                     m_.scheduler().now()));
            h = plainRead(header, 8);
            if (!isLocked(h) || lockOwner(h) == core_)
                break;
            // The sampled word is discarded (the loop re-ALoads and
            // re-samples after resolution), so don't hold the watch
            // through conflict resolution: its alert handler could
            // consume this header's own alert and re-arm only
            // readHeaders_ entries, leaving a dark mark - and an
            // abort thrown by resolution would leak it outright.
            m_.memsys().arelease(core_, header);
            resolveOwner(header);
        }
    } catch (...) {
        // The watch went live before the throw, but the header is
        // not in readHeaders_ yet, so abortCleanup's releaseAll
        // would never retire it: the orphaned mark survives into the
        // next transaction and decays into a spurious - or, once the
        // cached copy is invalidated, an undeliverable - alert.
        m_.memsys().arelease(core_, header);
        throw;
    }
    readHeaders_.emplace(header, h);
    ++g_.karma[core_];
}

void
RtmfThread::openForWrite(Addr a)
{
    const Addr header = g_.headerFor(a);
    if (acquired_.count(header))
        return;
    std::uint64_t old;
    for (;;) {
        old = plainRead(header, 8);
        if (isLocked(old)) {
            if (lockOwner(old) == core_)
                return;
            resolveOwner(header);
            continue;
        }
        if (casWord(header, old,
                    (std::uint64_t{core_} << 1) | 1, 8)
                .success) {
            break;
        }
    }
    acquired_.emplace(header, old);
    ++g_.karma[core_];
}

std::uint64_t
RtmfThread::txRead(Addr a, unsigned size)
{
    const Addr line = lineAlign(a);
    if (!openedLines_.count(line)) {
        checkAlert();
        openForRead(a);
        openedLines_.insert(line);
    }
    std::uint64_t v = 0;
    MemResult r = m_.memsys().access(core_, AccessType::TLoad, a, size,
                                     &v, m_.scheduler().now());
    charge(r.latency);
    checkAlert();
    return v;
}

void
RtmfThread::txWrite(Addr a, std::uint64_t v, unsigned size)
{
    checkAlert();
    openForWrite(a);
    MemResult r = m_.memsys().access(core_, AccessType::TStore, a, size,
                                     &v, m_.scheduler().now());
    charge(r.latency);
    checkAlert();
}

void
RtmfThread::releaseAll(bool committed)
{
    acquired_.forEachSorted([&](Addr header, const std::uint64_t &old) {
        plainWrite(header, committed ? old + 2 : old, 8);
    });
    acquired_.clear();
    readHeaders_.forEachSorted([this](Addr header, const std::uint64_t &) {
        m_.memsys().arelease(core_, header);
    });
    readHeaders_.clear();
    openedLines_.clear();
}

bool
RtmfThread::commitTx()
{
    // Drain every pending alert before deciding to commit: a
    // coalesced header alert left pending here would mean committing
    // without re-validating the read set.
    checkAlert();
    while (ctx().aou.alertPending())
        checkAlert();
    // PDI flash commit via CAS-Commit, without the CST check (RTM-F
    // has no CSTs).
    // From the CAS-Commit on, flash commit/abort drops TI header
    // lines without alerts while their watches are still marked.
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteSettling(core_, true);
    CommitResult cr = m_.memsys().casCommit(core_, tswAddr_, TswActive,
                                            TswCommitted,
                                            m_.scheduler().now(),
                                            /*check_csts=*/false);
    if (cr.outcome == CommitOutcome::Committed)
        oracleStamp();  // serialization point, before charge() yields
    charge(cr.latency);
    if (cr.outcome != CommitOutcome::Committed)
        throw TxAbort{AbortCause::EnemyKill};

    releaseAll(true);
    HwContext &c = ctx();
    c.rsig.clear();
    c.wsig.clear();
    c.cst.clearAll();
    m_.memsys().arelease(core_, tswAddr_);
    c.aou.acknowledge();
    c.ot = nullptr;
    c.inTx = false;
    g_.tswOf[core_] = 0;
    g_.karma[core_] = 0;
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteTxEnd(core_);
    return true;
}

void
RtmfThread::injectSpuriousAlert()
{
    // A capacity alert on the TSW: survivable, the handler re-ALoads.
    ctx().aou.raise(AlertCause::Capacity, tswAddr_);
    checkAlert();
}

void
RtmfThread::injectRemoteAbort()
{
    ++m_.stats().counter("fault.forced_aborts");
    casWord(tswAddr_, TswActive, TswAborted, 4);
    ctx().aou.raise(AlertCause::RemoteUpdate, tswAddr_);
    checkAlert();
}

void
RtmfThread::abortCleanup()
{
    // The flash abort below drops TI header lines without alerts
    // while their watches are still marked; releaseAll() then
    // retires the marks one plain write at a time.
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteSettling(core_, true);
    charge(m_.memsys().abortTx(core_, m_.scheduler().now()));
    releaseAll(false);
    HwContext &c = ctx();
    c.rsig.clear();
    c.wsig.clear();
    c.cst.clearAll();
    m_.memsys().arelease(core_, tswAddr_);
    c.aou.acknowledge();
    c.ot = nullptr;
    c.inTx = false;
    g_.tswOf[core_] = 0;
    g_.karma[core_] = 0;
    strongAborted_ = false;
    if (StateAuditor *a = m_.memsys().auditor())
        a->noteTxEnd(core_);
}

} // namespace flextm
