/**
 * @file
 * Alert-On-Update (Section 3.4).
 *
 * A program marks cache lines with ALoad; when a marked line is
 * invalidated or updated by a remote write, the controller raises an
 * alert that vectors to a user-registered handler at the next
 * instruction boundary.  FlexTM proper only needs the simplified
 * single-line variant (the transaction status word), but the general
 * multi-line form is kept available for non-transactional uses such as
 * FlexWatcher's invariant monitoring.
 */

#ifndef FLEXTM_CORE_AOU_HH
#define FLEXTM_CORE_AOU_HH

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace flextm
{

/** Why an alert fired (passed to the handler). */
enum class AlertCause
{
    RemoteUpdate,    //!< an ALoaded line was written remotely
    Capacity,        //!< an ALoaded line was evicted (alert bit lost)
    SigLocalAccess   //!< FlexWatcher: local access hit an active sig
};

/** Per-core AOU controller state. */
class AouController
{
  public:
    /** Mark the line containing @p addr (the ALoad instruction). */
    void
    aload(Addr addr)
    {
        marked_.insert(lineAlign(addr));
    }

    /** Remove the mark from the line containing @p addr (ARelease). */
    void
    arelease(Addr addr)
    {
        marked_.erase(lineAlign(addr));
    }

    /**
     * Drop all marks (transaction end / context switch).  A pending
     * alert is deliberately *not* discarded: the paper's context-
     * switch semantics require an alert raised in the same window as
     * transaction end / OS suspend to be delivered (or to abort the
     * transaction), never silently lost.  The software path that owns
     * the alert consumes it with acknowledge().
     */
    void
    clear()
    {
        marked_.clear();
    }

    /** Full controller reset between experiments: marks AND any
     *  pending alert (nobody is left to deliver it to). */
    void
    reset()
    {
        marked_.clear();
        alertPending_ = false;
    }

    bool
    isMarked(Addr addr) const
    {
        return marked_.contains(lineAlign(addr));
    }

    std::size_t markedCount() const { return marked_.size(); }

    /** The marked-line set (state auditor: invariant I7). */
    const FlatSet<Addr> &markedLines() const { return marked_; }

    /**
     * Called by the L1 controller when a marked line is lost.
     * Records a pending alert; the core takes it at the next
     * instruction boundary.
     */
    void
    raise(AlertCause cause, Addr addr)
    {
        alertPending_ = true;
        lastCause_ = cause;
        lastAddr_ = addr;
    }

    bool alertPending() const { return alertPending_; }
    AlertCause lastCause() const { return lastCause_; }
    Addr lastAddr() const { return lastAddr_; }

    /** Consume the pending alert (entering the handler). */
    void
    acknowledge()
    {
        alertPending_ = false;
    }

  private:
    FlatSet<Addr> marked_;
    bool alertPending_ = false;
    AlertCause lastCause_ = AlertCause::RemoteUpdate;
    Addr lastAddr_ = 0;
};

} // namespace flextm

#endif // FLEXTM_CORE_AOU_HH
