/**
 * @file
 * CACTI-lite analytical area model (Section 6, Table 2).
 *
 * The paper sizes FlexTM's hardware add-ons — signatures, CSTs, the OT
 * controller, and per-line state bits — for three 65 nm processors
 * (Merom, Power6, Niagara-2) using CACTI 6 plus published die images.
 * We cannot run CACTI here, so this model reproduces the arithmetic
 * with per-bit area coefficients calibrated to the paper's published
 * component areas (see the constants in area_model.cc).  The published
 * die/core/L1 geometries are baked in as the three standard configs.
 */

#ifndef FLEXTM_CORE_AREA_MODEL_HH
#define FLEXTM_CORE_AREA_MODEL_HH

#include <string>
#include <vector>

namespace flextm
{

/** Geometry of a host processor, from die photos (Table 2 top). */
struct ProcessorSpec
{
    std::string name;
    unsigned smtThreads;      //!< hardware contexts per core
    unsigned featureNm;       //!< process feature size
    double dieMm2;
    double coreMm2;
    double l1dMm2;
    unsigned lineBytes;       //!< L1 line size
    double l2Mm2;
};

/** FlexTM add-on sizing for one processor (Table 2 bottom). */
struct AreaEstimate
{
    double signatureMm2;      //!< R+W signatures, all contexts
    unsigned cstRegisters;    //!< 3 per hardware context
    double cstMm2;
    double otControllerMm2;
    unsigned extraStateBits;  //!< T, A, and SMT owner-ID bits per line
    double pctCoreIncrease;   //!< percent
    double pctL1Increase;     //!< percent
};

/** The analytical model. */
class AreaModel
{
  public:
    /**
     * @param signature_bits  width of one signature (paper: 2048)
     */
    explicit AreaModel(unsigned signature_bits = 2048);

    AreaEstimate estimate(const ProcessorSpec &spec) const;

    /** The three processors evaluated in Table 2. */
    static std::vector<ProcessorSpec> paperProcessors();

  private:
    unsigned signatureBits_;
};

} // namespace flextm

#endif // FLEXTM_CORE_AREA_MODEL_HH
