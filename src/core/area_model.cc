#include "core/area_model.hh"

#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace flextm
{

namespace
{

/**
 * Calibrated per-bit coefficients (mm^2 per bit at 65 nm).
 *
 * sigBitArea: 4-banked dual-ported signature SRAM including
 * peripheral overhead; calibrated so that 2 signatures x 2048 bits
 * per context reproduce the paper's 0.033 / 0.066 / 0.26 mm^2 for
 * 1 / 2 / 8 contexts (the published numbers are linear in context
 * count to within rounding, so a single coefficient suffices).
 *
 * otBufBitArea: OT-controller writeback/miss buffers (8 + 8 entries
 * sized to the L1 line), wide-ported; calibrated to the published
 * 0.16 / 0.24 / 0.035 mm^2 for 64 / 128 / 16-byte lines.
 *
 * regBitArea: flop-based CST register area (latch + flash-clear
 * transistor); small relative to everything else.
 */
constexpr double sigBitArea = 8.05e-6;
constexpr double otBufBitArea = 1.7e-5;
constexpr double regBitArea = 2.0e-6;

/** Scale an area coefficient from 65 nm to another node. */
double
nodeScale(unsigned feature_nm)
{
    const double r = static_cast<double>(feature_nm) / 65.0;
    return r * r;
}

} // anonymous namespace

AreaModel::AreaModel(unsigned signature_bits)
    : signatureBits_(signature_bits)
{
    sim_assert(signature_bits >= 64);
}

AreaEstimate
AreaModel::estimate(const ProcessorSpec &spec) const
{
    const double scale = nodeScale(spec.featureNm);
    AreaEstimate e;

    // Two signatures (Rsig + Wsig) per hardware context.
    const double sig_bits = 2.0 * signatureBits_ * spec.smtThreads;
    e.signatureMm2 = sig_bits * sigBitArea * scale;

    // Three full-map CST registers per context, one bit per core;
    // modelled at the 64-bit register width of the implementation.
    e.cstRegisters = 3 * spec.smtThreads;
    e.cstMm2 = e.cstRegisters * 64.0 * regBitArea * scale;

    // OT controller: 8 writeback + 8 miss buffers sized to the L1
    // line, plus MSHRs; dominated by the buffers.
    const double ot_bits = 16.0 * spec.lineBytes * 8.0;
    e.otControllerMm2 = ot_bits * otBufBitArea * scale;

    // Per-line state: T and A bits always; SMT parts need owner-ID
    // bits to identify which context wrote a TMI line.
    const unsigned id_bits =
        spec.smtThreads > 1
            ? static_cast<unsigned>(std::bit_width(spec.smtThreads - 1))
            : 0;
    e.extraStateBits = 2 + id_bits;

    // L1 growth: extra state bits relative to the line's data bits
    // (the state array is accessed in parallel with the data array,
    // so only area, not latency, is affected).
    e.pctL1Increase = 100.0 * e.extraStateBits /
                      (spec.lineBytes * 8.0);
    const double l1_extra = spec.l1dMm2 * e.pctL1Increase / 100.0;

    e.pctCoreIncrease = 100.0 *
                        (e.signatureMm2 + e.cstMm2 +
                         e.otControllerMm2 + l1_extra) /
                        spec.coreMm2;
    return e;
}

std::vector<ProcessorSpec>
AreaModel::paperProcessors()
{
    return {
        {"Merom", 1, 65, 143.0, 31.5, 1.8, 64, 49.6},
        {"Power6", 2, 65, 340.0, 53.0, 2.6, 128, 126.0},
        {"Niagara-2", 8, 65, 342.0, 11.7, 0.4, 16, 92.0},
    };
}

} // namespace flextm
