#include "core/overflow_table.hh"

#include <cstring>

#include "sim/logging.hh"

namespace flextm
{

OverflowTable::OverflowTable(unsigned sig_bits, unsigned sig_hashes)
    : osig_(sig_bits, sig_hashes)
{
}

void
OverflowTable::insert(Addr physical, Addr logical,
                      const std::uint8_t *line)
{
    sim_assert((physical & lineMask) == 0);
    OtEntry e;
    e.physical = physical;
    e.logical = logical;
    std::memcpy(e.data.data(), line, lineBytes);
    entries_[physical] = e;
    osig_.insert(physical);
    ++totalOverflows_;
    highWater_ = std::max(highWater_, entries_.size());
}

bool
OverflowTable::mayContain(Addr physical) const
{
    return osig_.mayContain(physical);
}

bool
OverflowTable::fetchAndInvalidate(Addr physical, std::uint8_t *out)
{
    auto it = entries_.find(lineAlign(physical));
    if (it == entries_.end())
        return false;
    std::memcpy(out, it->second.data.data(), lineBytes);
    entries_.erase(it);
    ++totalRefills_;
    return true;
}

const OtEntry *
OverflowTable::find(Addr physical) const
{
    auto it = entries_.find(lineAlign(physical));
    return it == entries_.end() ? nullptr : &it->second;
}

void
OverflowTable::clear()
{
    entries_.clear();
    osig_.clear();
    committed_ = false;
}

bool
OverflowTable::retag(Addr old_physical, Addr new_physical)
{
    auto it = entries_.find(lineAlign(old_physical));
    if (it == entries_.end())
        return false;
    OtEntry e = it->second;
    e.physical = lineAlign(new_physical);
    entries_.erase(it);
    entries_[e.physical] = e;
    osig_.insert(e.physical);
    return true;
}

} // namespace flextm
