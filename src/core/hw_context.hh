/**
 * @file
 * Per-core FlexTM hardware state (the dark-outlined boxes of
 * Figure 2): access-tracking signatures, conflict summary tables, AOU
 * control, and the overflow-table controller registers.
 *
 * This struct is the contract between the coherence engine
 * (src/mem) and the TM runtime (src/runtime): the L1 controller reads
 * and updates it while servicing requests; the runtime configures it
 * at transaction boundaries; the OS saves and restores it across
 * context switches.  Everything here is software-visible by design
 * (Section 1: "All three mechanisms are kept software-accessible").
 */

#ifndef FLEXTM_CORE_HW_CONTEXT_HH
#define FLEXTM_CORE_HW_CONTEXT_HH

#include <functional>

#include "core/aou.hh"
#include "core/cst.hh"
#include "core/overflow_table.hh"
#include "core/signature.hh"
#include "sim/types.hh"

namespace flextm
{

/** Conflict detection mode of the running transaction (Table 1 E/L). */
enum class ConflictMode
{
    Eager,
    Lazy
};

/** Per-core FlexTM processor/controller state. */
struct HwContext
{
    HwContext(CoreId core, unsigned sig_bits, unsigned sig_hashes)
        : coreId(core), rsig(sig_bits, sig_hashes),
          wsig(sig_bits, sig_hashes)
    {
    }

    CoreId coreId;

    /** @name Access tracking (Section 3.1) */
    /// @{
    Signature rsig;
    Signature wsig;
    /// @}

    /** Conflict tracking registers (Section 3.2). */
    CstSet cst;

    /** Alert-on-update controller (Section 3.4). */
    AouController aou;

    /** @name Overflow-table controller registers (Section 4)
     *  ot == nullptr means no OT is installed; the first TMI
     *  overflow traps to software, which allocates one. */
    /// @{
    OverflowTable *ot = nullptr;
    ThreadId otThread = invalidThread;
    /** Simulated time at which a committed OT's copy-back finishes;
     *  requests hitting the Osig before then are NACKed. */
    Cycles otBusyUntil = 0;
    /// @}

    /** True between BEGIN_TRANSACTION and commit/abort. */
    bool inTx = false;

    /** Conflict-detection mode of the current transaction. */
    ConflictMode mode = ConflictMode::Eager;

    /** FlexWatcher: check local accesses against Rsig/Wsig
     *  (the `activate Sig` instruction of Table 4a). */
    bool monitorActive = false;

    /**
     * Strong-isolation hook (Section 3.5): invoked by the coherence
     * engine when a *non-transactional* remote access hits this
     * core's Rsig or Wsig, requiring this core's transaction to
     * abort so the plain access serializes before it.
     */
    std::function<void(CoreId aggressor)> strongAbort;

    /**
     * OT-allocation trap (Section 4.1): invoked on the first TMI
     * eviction when no OT is installed.  The handler (runtime/OS)
     * must allocate a table and set `ot` / `otThread`.
     */
    std::function<void()> otAllocTrap;

    /** Reset all transactional state (used between experiments). */
    void
    hardReset()
    {
        rsig.clear();
        wsig.clear();
        cst.clearAll();
        aou.reset();
        ot = nullptr;
        otThread = invalidThread;
        otBusyUntil = 0;
        inTx = false;
        monitorActive = false;
    }
};

} // namespace flextm

#endif // FLEXTM_CORE_HW_CONTEXT_HH
