/**
 * @file
 * Per-thread Overflow Table (Section 4).
 *
 * Speculative (TMI) lines evicted from the L1 are buffered in a
 * thread-private table in virtual memory rather than falling back to a
 * software-only TM.  The L1 controller holds a small register file
 * describing the current thread's OT: a signature of overflowed lines
 * (Osig), an entry count, a committed/speculative flag, and indexing
 * parameters.  On an L1 miss the Osig provides a fast lookaside check;
 * hits fetch the line back from the OT.  CAS-Commit flips the
 * committed flag and starts a micro-coded copy-back; remote requests
 * that hit the Osig of a committed OT are NACKed until copy-back
 * completes.
 *
 * Entries are tagged with both the physical address (associative
 * lookup) and the logical address (page-in during copy-back), which is
 * what lets the OS remap pages under an active transaction
 * (Section 4.1, Virtual Memory Paging).
 */

#ifndef FLEXTM_CORE_OVERFLOW_TABLE_HH
#define FLEXTM_CORE_OVERFLOW_TABLE_HH

#include <array>
#include <cstdint>

#include "core/signature.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace flextm
{

/** One buffered speculative line. */
struct OtEntry
{
    Addr physical;                            //!< lookup tag
    Addr logical;                             //!< copy-back tag
    std::array<std::uint8_t, lineBytes> data;
};

/**
 * The overflow table proper: software-visible, OS-allocated, walked by
 * the hardware OT controller.  Indexed by physical line address.
 */
class OverflowTable
{
  public:
    explicit OverflowTable(unsigned sig_bits = 2048,
                           unsigned sig_hashes = 4);

    /** Buffer an evicted TMI line. */
    void insert(Addr physical, Addr logical, const std::uint8_t *line);

    /** Fast lookaside membership check (tests the Osig). */
    bool mayContain(Addr physical) const;

    /**
     * Associative lookup.  On a hit, copies the line into @p out,
     * removes the entry, and returns true.  The Osig is *not* cleared
     * (Bloom filters cannot delete), matching hardware behaviour.
     */
    bool fetchAndInvalidate(Addr physical, std::uint8_t *out);

    /** Non-destructive lookup (used by remote lookups / the OS). */
    const OtEntry *find(Addr physical) const;

    /** Number of buffered lines. */
    std::size_t count() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** The committed/speculative flag set by CAS-Commit. */
    bool committed() const { return committed_; }
    void setCommitted(bool c) { committed_ = c; }

    const Signature &osig() const { return osig_; }

    /** Discard all entries (abort path; OT returned to the OS). */
    void clear();

    /**
     * Re-tag an entry whose logical page was remapped to a new
     * physical frame (Section 4.1).  Returns true if an entry with
     * @p old_physical existed.
     */
    bool retag(Addr old_physical, Addr new_physical);

    /**
     * Iterate entries for copy-back (order is unconstrained for redo
     * logs, unlike time-ordered undo logs — Section 4.1).
     */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        // Physical-address order: the architecture leaves copy-back
        // order unconstrained, but the simulator keeps it fixed so
        // runs are reproducible for a given seed.
        entries_.forEachSorted(
            [&fn](Addr, const OtEntry &e) { fn(e); });
    }

    /** Lifetime statistics for the overflow study (Section 7.3). */
    std::uint64_t totalOverflows() const { return totalOverflows_; }
    std::uint64_t totalRefills() const { return totalRefills_; }
    std::size_t highWater() const { return highWater_; }

  private:
    FlatMap<Addr, OtEntry> entries_;
    Signature osig_;
    bool committed_ = false;
    std::uint64_t totalOverflows_ = 0;
    std::uint64_t totalRefills_ = 0;
    std::size_t highWater_ = 0;
};

} // namespace flextm

#endif // FLEXTM_CORE_OVERFLOW_TABLE_HH
