#include "core/signature.hh"

#include <bit>
#include <utility>

#include "sim/fault.hh"
#include "sim/logging.hh"

namespace flextm
{

namespace
{

/** Per-bank multiplicative mixing constants (odd, well spread). */
constexpr std::uint64_t hashConsts[] = {
    0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL,
    0x165667b19e3779f9ULL, 0x27d4eb2f165667c5ULL,
    0x85ebca6b2e4f3d31ULL, 0xd6e8feb86659fd93ULL,
    0xa0761d6478bd642fULL, 0xe7037ed1a0b428dbULL,
};

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // anonymous namespace

Signature::Signature(unsigned bits, unsigned hashes)
    : bits_(bits), hashes_(hashes)
{
    sim_assert(bits >= 64 && (bits & (bits - 1)) == 0,
               "signature width must be a power of two >= 64");
    sim_assert(hashes >= 1 &&
                   hashes <= sizeof(hashConsts) / sizeof(hashConsts[0]),
               "unsupported hash count");
    sim_assert(bits % hashes == 0, "banks must divide evenly");
    bankBits_ = bits / hashes;
    sim_assert((bankBits_ & (bankBits_ - 1)) == 0,
               "per-bank width must be a power of two");
    words_.assign(bits / 64, 0);
}

unsigned
Signature::bitIndex(Addr line, unsigned hash) const
{
    const std::uint64_t h = mix64(line * hashConsts[hash]);
    return hash * bankBits_ + static_cast<unsigned>(h & (bankBits_ - 1));
}

void
Signature::insertLine(Addr line)
{
    for (unsigned h = 0; h < hashes_; ++h) {
        const unsigned idx = bitIndex(line, h);
        words_[idx / 64] |= std::uint64_t{1} << (idx % 64);
    }
}

void
Signature::insert(Addr addr)
{
    insertLine(lineNumber(addr));
    ++population_;
    // Fault injection: additionally hash in a random unrelated line.
    // Membership tests for that alias now report false positives -
    // consistently, until clear(), exactly like a real Bloom
    // collision (per-query coin flips would be an unsound model).
    if (FaultPlan *fp = FaultPlan::active();
        fp && fp->fire(FaultKind::SigFalsePositive)) {
        insertLine(fp->rng().next());
    }
}

bool
Signature::mayContain(Addr addr) const
{
    if (population_ == 0)
        return false;
    const Addr line = lineNumber(addr);
    for (unsigned h = 0; h < hashes_; ++h) {
        const unsigned idx = bitIndex(line, h);
        if (!(words_[idx / 64] & (std::uint64_t{1} << (idx % 64))))
            return false;
    }
    return true;
}

void
Signature::clear()
{
    words_.assign(words_.size(), 0);
    population_ = 0;
    ++generation_;
}

Signature &
Signature::operator=(const Signature &o)
{
    if (this != &o) {
        bits_ = o.bits_;
        hashes_ = o.hashes_;
        bankBits_ = o.bankBits_;
        words_ = o.words_;
        population_ = o.population_;
        ++generation_;
    }
    return *this;
}

Signature &
Signature::operator=(Signature &&o)
{
    if (this != &o) {
        bits_ = o.bits_;
        hashes_ = o.hashes_;
        bankBits_ = o.bankBits_;
        words_ = std::move(o.words_);
        population_ = o.population_;
        ++generation_;
    }
    return *this;
}

void
Signature::unionWith(const Signature &other)
{
    sim_assert(bits_ == other.bits_ && hashes_ == other.hashes_,
               "signature geometry mismatch in union");
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    population_ += other.population_;
}

double
Signature::fillRatio() const
{
    std::uint64_t set = 0;
    for (auto w : words_)
        set += std::popcount(w);
    return static_cast<double>(set) / static_cast<double>(bits_);
}

std::uint64_t
Signature::readHash(Addr addr) const
{
    const Addr line = lineNumber(addr);
    std::uint64_t packed = 0;
    for (unsigned h = 0; h < hashes_; ++h)
        packed = (packed << 16) | (bitIndex(line, h) & 0xffff);
    return packed;
}

bool
Signature::operator==(const Signature &other) const
{
    return bits_ == other.bits_ && hashes_ == other.hashes_ &&
           words_ == other.words_;
}

} // namespace flextm
