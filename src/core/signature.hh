/**
 * @file
 * Bloom-filter access signatures (Section 3.1).
 *
 * Each FlexTM core carries a read signature (Rsig) and a write
 * signature (Wsig) summarizing the current transaction's access sets:
 * conservative (false positives possible, never false negatives).
 * The default geometry follows Table 3a / Bulk's S14 configuration:
 * 2048 bits, 4 banks, one independent hash per bank.
 *
 * Signatures are first-class, software-visible objects: they can be
 * read, saved, restored, unioned (for OS summary signatures), and used
 * for non-transactional purposes (FlexWatcher, Section 8).
 */

#ifndef FLEXTM_CORE_SIGNATURE_HH
#define FLEXTM_CORE_SIGNATURE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace flextm
{

/** A banked Bloom filter over cache-line addresses. */
class Signature
{
  public:
    /**
     * @param bits   total width in bits (power of two)
     * @param hashes number of banks / independent hash functions
     */
    explicit Signature(unsigned bits = 2048, unsigned hashes = 4);

    /** Add the line containing @p addr. */
    void insert(Addr addr);

    /** Conservative membership test for the line containing @p addr. */
    bool mayContain(Addr addr) const;

    /** Zero out the filter (the `clear Sig` instruction). */
    void clear();

    /** True when no line has ever been inserted since clear(). */
    bool empty() const { return population_ == 0; }

    /** Number of insert() calls since the last clear(). */
    std::uint64_t insertCount() const { return population_; }

    /**
     * Bit-removal generation: bumped by every operation that can
     * take bits away from this object (clear(), wholesale
     * assignment).  Between two reads of the same (generation(),
     * insertCount()) pair the filter is unchanged; under an
     * unchanged generation() alone it can only have gained bits.
     * This is the validity contract the directory's sharer cache
     * uses to memoize mayContain() results.
     */
    std::uint64_t generation() const { return generation_; }

    Signature(const Signature &) = default;
    Signature(Signature &&) = default;
    /** Replacing the contents may drop bits: advance generation_. */
    Signature &operator=(const Signature &o);
    Signature &operator=(Signature &&o);

    /** OR another signature into this one (OS summary signatures). */
    void unionWith(const Signature &other);

    /** Fraction of filter bits that are set (for diagnostics). */
    double fillRatio() const;

    /**
     * The `read-hash` instruction of the FlexWatcher API (Table 4a):
     * returns the packed bit indices this address hashes to.
     */
    std::uint64_t readHash(Addr addr) const;

    unsigned bits() const { return bits_; }
    unsigned hashes() const { return hashes_; }

    bool operator==(const Signature &other) const;

  private:
    unsigned bits_;
    unsigned hashes_;
    unsigned bankBits_;      //!< bits per bank
    std::vector<std::uint64_t> words_;
    std::uint64_t population_ = 0;
    std::uint64_t generation_ = 0;

    unsigned bitIndex(Addr line, unsigned hash) const;
    void insertLine(Addr line);
};

} // namespace flextm

#endif // FLEXTM_CORE_SIGNATURE_HH
