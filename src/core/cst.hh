/**
 * @file
 * Conflict Summary Tables (Section 3.2).
 *
 * FlexTM tracks conflicts processor-by-processor instead of
 * line-by-line.  Each core has three CSTs — R-W, W-R and W-W — each a
 * bit-vector with one bit per other core:
 *
 *   R-W[i] set:  a local transactional read conflicted with a write on
 *                remote core i;
 *   W-R[i] set:  a local transactional write conflicted with a read on
 *                remote core i;
 *   W-W[i] set:  local and remote transactional writes conflicted.
 *
 * Because a committing transaction only has to abort the peers named
 * in its W-R and W-W tables, commits and aborts are entirely local —
 * no commit tokens, write-set broadcast, or ticket serialization.
 */

#ifndef FLEXTM_CORE_CST_HH
#define FLEXTM_CORE_CST_HH

#include <bit>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace flextm
{

/** Maximum number of cores a CST register can name. */
constexpr unsigned maxCstCores = 64;

/** One conflict summary bit-vector register. */
class ConflictSummaryTable
{
  public:
    void
    set(CoreId core)
    {
        sim_assert(core < maxCstCores);
        bits_ |= std::uint64_t{1} << core;
    }

    bool
    test(CoreId core) const
    {
        sim_assert(core < maxCstCores);
        return bits_ & (std::uint64_t{1} << core);
    }

    void
    clearBit(CoreId core)
    {
        sim_assert(core < maxCstCores);
        bits_ &= ~(std::uint64_t{1} << core);
    }

    void clear() { bits_ = 0; }

    bool empty() const { return bits_ == 0; }

    /** Number of conflicting peers currently recorded. */
    unsigned popCount() const { return std::popcount(bits_); }

    /** Raw register value (software-visible). */
    std::uint64_t raw() const { return bits_; }

    void setRaw(std::uint64_t v) { bits_ = v; }

    /** OR in another table (OS context-switch merge). */
    void unionWith(const ConflictSummaryTable &o) { bits_ |= o.bits_; }

    /**
     * The copy-and-clear instruction used by the lazy Commit()
     * routine (Figure 3, line 1): atomically read and zero.
     */
    std::uint64_t
    copyAndClear()
    {
        const std::uint64_t v = bits_;
        bits_ = 0;
        return v;
    }

    /** Invoke @p fn for every core whose bit is set in @p raw_bits. */
    template <typename Fn>
    static void
    forEach(std::uint64_t raw_bits, Fn fn)
    {
        while (raw_bits) {
            const auto core =
                static_cast<CoreId>(std::countr_zero(raw_bits));
            raw_bits &= raw_bits - 1;
            fn(core);
        }
    }

  private:
    std::uint64_t bits_ = 0;
};

/** The per-core trio of CST registers. */
struct CstSet
{
    ConflictSummaryTable rw;  //!< local read  vs. remote write
    ConflictSummaryTable wr;  //!< local write vs. remote read
    ConflictSummaryTable ww;  //!< local write vs. remote write

    void
    clearAll()
    {
        rw.clear();
        wr.clear();
        ww.clear();
    }

    bool
    allEmpty() const
    {
        return rw.empty() && wr.empty() && ww.empty();
    }
};

} // namespace flextm

#endif // FLEXTM_CORE_CST_HH
